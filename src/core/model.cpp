#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::core {

double RooflineParams::G_us_per_byte() const {
  return gbs_to_us_per_byte(peak_gbs);
}

std::string RooflineParams::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "Roofline{o=%.3fus L=%.3fus peak=%.1fGB/s}",
                o_us, L_us, peak_gbs);
  return buf;
}

double RooflineModel::sharp_gbs(double bytes, double m) const {
  MRL_CHECK(bytes > 0 && m >= 1);
  const double t = std::max({m * p_.o_us, p_.L_us,
                             m * bytes * p_.G_us_per_byte()});
  return bytes_per_us_to_gbs(m * bytes, t);
}

double RooflineModel::sync_time_us(double bytes, double m) const {
  MRL_CHECK(bytes > 0 && m >= 1);
  return m * p_.o_us + std::max(p_.L_us, m * bytes * p_.G_us_per_byte());
}

double RooflineModel::rounded_gbs(double bytes, double m) const {
  return bytes_per_us_to_gbs(m * bytes, sync_time_us(bytes, m));
}

double RooflineModel::effective_latency_us(double bytes, double m) const {
  return sync_time_us(bytes, m) / m;
}

double RooflineModel::latency_line_gbs(double bytes, double latency_us) {
  MRL_CHECK(latency_us > 0);
  return bytes_per_us_to_gbs(bytes, latency_us);
}

double RooflineModel::knee_bytes(double m) const {
  MRL_CHECK(m >= 1);
  const double bound = std::max(m * p_.o_us, p_.L_us);
  return bound / (m * p_.G_us_per_byte());
}

double RooflineModel::overlap_headroom(double bytes) const {
  const double bw1 = rounded_gbs(bytes, 1.0);
  const double bw_inf =
      bytes_per_us_to_gbs(bytes, p_.o_us + bytes * p_.G_us_per_byte());
  return bw_inf / bw1;
}

}  // namespace mrl::core
