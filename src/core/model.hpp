// The Message Roofline Model (the paper's Section II).
//
// Sustained messaging bandwidth as a function of message size B and the
// number of messages per synchronization m, bounded by LogGP parameters:
//
//   sharp:    BW(B, m) = m*B / max(m*o, L, m*B*G)
//   rounded:  BW(B, m) = m*B / (m*o + max(L, m*B*G))
//
// The sharp model is the idealized roofline (its diagonal/horizontal
// junction is "a region one can never practically reach"); the rounded model
// matches empirical data because the per-operation overhead o can never be
// overlapped. Latency lines (diagonal ceilings) are BW = B / L_eff.
#pragma once

#include <string>
#include <vector>

#include "simnet/loggp.hpp"

namespace mrl::core {

/// Model parameters: LogGP costs plus the bandwidth ceiling.
struct RooflineParams {
  double o_us = 0.3;       ///< per-message overhead (not overlappable)
  double L_us = 3.0;       ///< latency (overlappable across messages)
  double peak_gbs = 32.0;  ///< bandwidth ceiling (1/G)

  /// us per byte at the ceiling.
  [[nodiscard]] double G_us_per_byte() const;

  [[nodiscard]] std::string to_string() const;
};

class RooflineModel {
 public:
  explicit RooflineModel(RooflineParams p) : p_(p) {}

  [[nodiscard]] const RooflineParams& params() const { return p_; }

  /// Sharp-model sustained bandwidth (GB/s) for m messages of B bytes/sync.
  [[nodiscard]] double sharp_gbs(double bytes, double msgs_per_sync) const;

  /// Rounded-model sustained bandwidth (GB/s).
  [[nodiscard]] double rounded_gbs(double bytes, double msgs_per_sync) const;

  /// Total rounded-model time for one synchronization window (us).
  [[nodiscard]] double sync_time_us(double bytes, double msgs_per_sync) const;

  /// Effective per-message latency: sync_time / m (the "latency line" a
  /// workload dot sits on).
  [[nodiscard]] double effective_latency_us(double bytes,
                                            double msgs_per_sync) const;

  /// Bandwidth of the pure latency diagonal BW = B / L_eff (GB/s).
  static double latency_line_gbs(double bytes, double latency_us);

  /// Message size where the sharp model turns bandwidth-bound for a given
  /// msgs/sync (the roofline knee): smallest B with m*B*G >= max(m*o, L).
  [[nodiscard]] double knee_bytes(double msgs_per_sync) const;

  /// Max speedup available from overlapping (m -> inf vs m = 1) at size B.
  [[nodiscard]] double overlap_headroom(double bytes) const;

 private:
  RooflineParams p_;
};

/// One empirical observation to plot against / fit to the model.
struct SweepPoint {
  double bytes = 0;
  double msgs_per_sync = 1;
  double measured_gbs = 0;
  double eff_latency_us = 0;
};

}  // namespace mrl::core
