#include "core/sweep.hpp"

#include <algorithm>
#include <cstring>

#include <memory>

#include "core/fit.hpp"
#include "core/parallel.hpp"
#include "mpi/comm.hpp"
#include "runtime/engine.hpp"
#include "mpi/win.hpp"
#include "shmem/shmem.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace mrl::core {

std::string to_string(SweepKind k) {
  switch (k) {
    case SweepKind::kTwoSided: return "two-sided MPI";
    case SweepKind::kOneSidedMpi: return "one-sided MPI";
    case SweepKind::kShmemPutSignal: return "SHMEM put-with-signal";
    case SweepKind::kAtomicCas: return "atomic CAS";
  }
  return "unknown";
}

SweepConfig SweepConfig::defaults(SweepKind kind) {
  SweepConfig cfg;
  cfg.kind = kind;
  for (std::uint64_t b = 8; b <= (4u << 20); b *= 4) cfg.msg_sizes.push_back(b);
  for (std::uint64_t m = 1; m <= 10000; m *= 10) cfg.msgs_per_sync.push_back(m);
  return cfg;
}

namespace {

/// One grid point: returns sender-side elapsed virtual microseconds.
/// Point runners borrow a caller-owned engine — workers reuse one engine
/// (and its persistent rank threads) across all the grid points they draw.
constexpr std::uint64_t kSlots = 8;  // buffer slots reused modulo the window

Result<double> run_two_sided_point(runtime::Engine& eng, const SweepConfig& cfg,
                           std::uint64_t bytes, std::uint64_t m, int iters) {
  const std::uint64_t slots = std::min(m, kSlots);
  double elapsed = 0;
  const auto res = mpi::World::run(eng, [&](mpi::Comm& c) {
    c.world().capture_payloads = false;  // timing-only transfers
    std::vector<std::byte> buf(bytes * slots);
    std::byte ack{};
    c.barrier();
    const double t0 = c.now();
    if (c.rank() == cfg.sender) {
      for (int it = 0; it < iters; ++it) {
        std::vector<mpi::Request> reqs;
        reqs.reserve(m);
        for (std::uint64_t j = 0; j < m; ++j) {
          reqs.push_back(c.isend(buf.data() + (j % slots) * bytes, bytes,
                                 cfg.receiver, 0));
        }
        c.waitall(reqs);
        c.recv(&ack, 1, cfg.receiver, 1);  // window ack = the synchronization
      }
      elapsed = c.now() - t0;
    } else if (c.rank() == cfg.receiver) {
      for (int it = 0; it < iters; ++it) {
        std::vector<mpi::Request> reqs;
        reqs.reserve(m);
        for (std::uint64_t j = 0; j < m; ++j) {
          reqs.push_back(c.irecv(buf.data() + (j % slots) * bytes, bytes,
                                 cfg.sender, 0));
        }
        c.waitall(reqs);
        c.send(&ack, 1, cfg.sender, 1);
      }
    }
    c.barrier();
  });
  if (!res.ok()) return res.status;
  return elapsed;
}

Result<double> run_one_sided_point(runtime::Engine& eng, const SweepConfig& cfg,
                           std::uint64_t bytes, std::uint64_t m, int iters) {
  const std::uint64_t slots = std::min(m, kSlots);
  double elapsed = 0;
  const auto res = mpi::World::run(eng, [&](mpi::Comm& c) {
    c.world().capture_payloads = false;  // timing-only transfers
    std::vector<std::byte> exposure(bytes * slots);
    std::vector<std::byte> origin(bytes * slots);
    mpi::WinHandle win = c.create_win(exposure.data(), exposure.size());
    c.barrier();
    const double t0 = c.now();
    if (c.rank() == cfg.sender) {
      for (int it = 0; it < iters; ++it) {
        for (std::uint64_t j = 0; j < m; ++j) {
          win.put(origin.data() + (j % slots) * bytes, bytes, cfg.receiver,
                  (j % slots) * bytes);
        }
        win.flush(cfg.receiver);  // remote completion = the synchronization
      }
      elapsed = c.now() - t0;
    }
    c.barrier();
  });
  if (!res.ok()) return res.status;
  return elapsed;
}

Result<double> run_shmem_point(runtime::Engine& eng, const SweepConfig& cfg,
                       std::uint64_t bytes, std::uint64_t m, int iters) {
  const std::uint64_t slots = std::min(m, kSlots);
  double elapsed = 0;
  shmem::World::Options opt;
  opt.heap_bytes =
      std::max<std::uint64_t>(bytes * slots + (slots + 1) * 8, 1u << 20);
  opt.capture_payloads = false;  // timing-only transfers
  const auto res = shmem::World::run(
      eng,
      [&](shmem::Ctx& s) {
        auto data = s.allocate<std::byte>(bytes * slots);
        auto sig = s.allocate<std::uint64_t>(slots);
        std::vector<std::byte> origin(bytes);
        s.barrier_all();
        const double t0 = s.now();
        if (s.pe() == cfg.sender) {
          for (int it = 0; it < iters; ++it) {
            for (std::uint64_t j = 0; j < m; ++j) {
              s.put_signal_nbi(data.at((j % slots) * bytes), origin.data(),
                               bytes, sig.at(j % slots), 1, cfg.receiver);
            }
            s.quiet();  // remote completion = the synchronization
          }
          elapsed = s.now() - t0;
        }
        s.barrier_all();
      },
      opt);
  if (!res.ok()) return res.status;
  return elapsed;
}

Result<double> run_cas_point(runtime::Engine& eng, const SweepConfig& cfg,
                     std::uint64_t /*bytes*/, std::uint64_t m, int iters) {
  const std::uint64_t slots = std::min(m, kSlots);
  double elapsed = 0;
  const auto res = shmem::World::run(eng, [&](shmem::Ctx& s) {
    auto word = s.allocate<std::uint64_t>(slots);
    s.barrier_all();
    const double t0 = s.now();
    if (s.pe() == cfg.sender) {
      for (int it = 0; it < iters; ++it) {
        for (std::uint64_t j = 0; j < m; ++j) {
          s.atomic_compare_swap(word.at(j % slots), 0, 1, cfg.receiver);
        }
      }
      elapsed = s.now() - t0;
    }
    s.barrier_all();
  });
  if (!res.ok()) return res.status;
  return elapsed;
}

}  // namespace

Result<std::vector<SweepPoint>> run_sweep(const simnet::Platform& platform,
                                          const SweepConfig& cfg) {
  MRL_CHECK(cfg.iters >= 1 && cfg.nranks >= 2);
  MRL_CHECK(cfg.sender != cfg.receiver);

  // Flatten the grid so every point has a pre-assigned output slot: the
  // result vector layout is fixed up front, making the output independent
  // of the order grid points happen to finish in.
  struct Cell {
    std::uint64_t bytes = 0;
    std::uint64_t m = 0;
    int iters = 0;
  };
  std::vector<Cell> cells;
  cells.reserve(cfg.msg_sizes.size() * cfg.msgs_per_sync.size());
  for (std::uint64_t bytes : cfg.msg_sizes) {
    for (std::uint64_t m : cfg.msgs_per_sync) {
      // Keep the total op count per grid point bounded: big windows need few
      // repetitions for a stable sustained-bandwidth estimate.
      const int iters = static_cast<int>(std::clamp<std::uint64_t>(
          20000 / std::max<std::uint64_t>(1, m), 2,
          std::max<std::uint64_t>(2, static_cast<std::uint64_t>(cfg.iters))));
      cells.push_back(Cell{bytes, m, iters});
    }
  }

  const int jobs = resolve_jobs(cfg.jobs);
  std::vector<SweepPoint> out(cells.size());
  std::vector<Status> errs(cells.size());
  // One engine (and persistent rank-thread pool) per worker, reused across
  // every grid point that worker draws. Each point is a fully isolated
  // simulation (fabric/clock/trace reset per run), so reuse is
  // bit-equivalent to a fresh engine per point.
  std::vector<std::unique_ptr<runtime::Engine>> engines(
      static_cast<std::size_t>(jobs));
  parallel_for_indexed(cells.size(), jobs, [&](int worker, std::size_t i) {
    auto& eng = engines[static_cast<std::size_t>(worker)];
    if (!eng) {
      eng = std::make_unique<runtime::Engine>(platform, cfg.nranks);
    }
    const Cell& cell = cells[i];
    Result<double> elapsed = 0.0;
    switch (cfg.kind) {
      case SweepKind::kTwoSided:
        elapsed = run_two_sided_point(*eng, cfg, cell.bytes, cell.m,
                                      cell.iters);
        break;
      case SweepKind::kOneSidedMpi:
        elapsed = run_one_sided_point(*eng, cfg, cell.bytes, cell.m,
                                      cell.iters);
        break;
      case SweepKind::kShmemPutSignal:
        elapsed = run_shmem_point(*eng, cfg, cell.bytes, cell.m, cell.iters);
        break;
      case SweepKind::kAtomicCas:
        elapsed = run_cas_point(*eng, cfg, cell.bytes, cell.m, cell.iters);
        break;
    }
    if (!elapsed.is_ok()) {
      // Deadlock/watchdog at this grid point (possible under faults): record
      // into the point's pre-assigned slot; the engine stays reusable for
      // the worker's remaining points.
      errs[i] = elapsed.status();
      return;
    }
    const double total_bytes = static_cast<double>(cell.bytes) *
                               static_cast<double>(cell.m) * cell.iters;
    SweepPoint pt;
    pt.bytes = static_cast<double>(cell.bytes);
    pt.msgs_per_sync = static_cast<double>(cell.m);
    pt.measured_gbs = bytes_per_us_to_gbs(total_bytes, elapsed.value());
    pt.eff_latency_us = elapsed.value() / (static_cast<double>(cell.m) *
                                           static_cast<double>(cell.iters));
    out[i] = pt;
  });
  // Deterministic error selection: the first failing point in grid order,
  // regardless of which worker hit it first.
  for (std::size_t i = 0; i < errs.size(); ++i) {
    if (!errs[i].is_ok()) {
      return Status(errs[i].code(),
                    "sweep point " + std::to_string(i) + " (" +
                        std::to_string(cells[i].bytes) + " B x " +
                        std::to_string(cells[i].m) + " msgs/sync): " +
                        errs[i].message());
    }
  }
  return out;
}

double measure_cas_latency_us(const simnet::Platform& platform, int nranks,
                              int origin, int target, int reps) {
  MRL_CHECK(origin != target && reps > 0);
  runtime::Engine eng(platform, nranks);
  double elapsed = 0;
  const auto res = shmem::World::run(eng, [&](shmem::Ctx& s) {
    auto word = s.allocate<std::uint64_t>(1);
    s.barrier_all();
    const double t0 = s.now();
    if (s.pe() == origin) {
      for (int i = 0; i < reps; ++i) {
        s.atomic_compare_swap(word, static_cast<std::uint64_t>(i),
                              static_cast<std::uint64_t>(i + 1), target);
      }
      elapsed = s.now() - t0;
    }
    s.barrier_all();
  });
  MRL_CHECK_MSG(res.ok(), res.status.message().c_str());
  return elapsed / reps;
}

Result<RooflineParams> calibrate_roofline(const simnet::Platform& platform,
                                          SweepKind kind, int jobs) {
  SweepConfig cfg = SweepConfig::defaults(kind);
  cfg.iters = 4;
  cfg.jobs = jobs;
  auto pts = run_sweep(platform, cfg);
  if (!pts.is_ok()) return pts.status();
  return fit_roofline(pts.value()).params;
}

}  // namespace mrl::core
