file(REMOVE_RECURSE
  "CMakeFiles/sptrsv_demo.dir/sptrsv_demo.cpp.o"
  "CMakeFiles/sptrsv_demo.dir/sptrsv_demo.cpp.o.d"
  "sptrsv_demo"
  "sptrsv_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sptrsv_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
