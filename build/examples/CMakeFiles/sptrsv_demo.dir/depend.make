# Empty dependencies file for sptrsv_demo.
# This may be replaced when dependencies are built.
