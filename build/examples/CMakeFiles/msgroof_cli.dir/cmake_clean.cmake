file(REMOVE_RECURSE
  "CMakeFiles/msgroof_cli.dir/msgroof_cli.cpp.o"
  "CMakeFiles/msgroof_cli.dir/msgroof_cli.cpp.o.d"
  "msgroof_cli"
  "msgroof_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgroof_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
