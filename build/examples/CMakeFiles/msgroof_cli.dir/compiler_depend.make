# Empty compiler generated dependencies file for msgroof_cli.
# This may be replaced when dependencies are built.
