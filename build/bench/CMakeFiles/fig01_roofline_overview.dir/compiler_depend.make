# Empty compiler generated dependencies file for fig01_roofline_overview.
# This may be replaced when dependencies are built.
