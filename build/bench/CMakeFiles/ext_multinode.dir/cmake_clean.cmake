file(REMOVE_RECURSE
  "CMakeFiles/ext_multinode.dir/ext_multinode.cpp.o"
  "CMakeFiles/ext_multinode.dir/ext_multinode.cpp.o.d"
  "ext_multinode"
  "ext_multinode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
