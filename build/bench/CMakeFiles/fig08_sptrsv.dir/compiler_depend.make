# Empty compiler generated dependencies file for fig08_sptrsv.
# This may be replaced when dependencies are built.
