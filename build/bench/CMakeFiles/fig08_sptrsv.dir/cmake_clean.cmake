file(REMOVE_RECURSE
  "CMakeFiles/fig08_sptrsv.dir/fig08_sptrsv.cpp.o"
  "CMakeFiles/fig08_sptrsv.dir/fig08_sptrsv.cpp.o.d"
  "fig08_sptrsv"
  "fig08_sptrsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sptrsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
