file(REMOVE_RECURSE
  "CMakeFiles/fig07_latency_msgsync.dir/fig07_latency_msgsync.cpp.o"
  "CMakeFiles/fig07_latency_msgsync.dir/fig07_latency_msgsync.cpp.o.d"
  "fig07_latency_msgsync"
  "fig07_latency_msgsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_latency_msgsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
