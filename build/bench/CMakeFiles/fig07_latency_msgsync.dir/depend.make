# Empty dependencies file for fig07_latency_msgsync.
# This may be replaced when dependencies are built.
