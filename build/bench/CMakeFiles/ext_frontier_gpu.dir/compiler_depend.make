# Empty compiler generated dependencies file for ext_frontier_gpu.
# This may be replaced when dependencies are built.
