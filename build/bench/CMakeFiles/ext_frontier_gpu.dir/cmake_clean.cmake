file(REMOVE_RECURSE
  "CMakeFiles/ext_frontier_gpu.dir/ext_frontier_gpu.cpp.o"
  "CMakeFiles/ext_frontier_gpu.dir/ext_frontier_gpu.cpp.o.d"
  "ext_frontier_gpu"
  "ext_frontier_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_frontier_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
