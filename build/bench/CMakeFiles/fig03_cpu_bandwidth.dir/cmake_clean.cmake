file(REMOVE_RECURSE
  "CMakeFiles/fig03_cpu_bandwidth.dir/fig03_cpu_bandwidth.cpp.o"
  "CMakeFiles/fig03_cpu_bandwidth.dir/fig03_cpu_bandwidth.cpp.o.d"
  "fig03_cpu_bandwidth"
  "fig03_cpu_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cpu_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
