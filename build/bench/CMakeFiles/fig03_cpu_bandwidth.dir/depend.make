# Empty dependencies file for fig03_cpu_bandwidth.
# This may be replaced when dependencies are built.
