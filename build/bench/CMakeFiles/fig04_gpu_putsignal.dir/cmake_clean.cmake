file(REMOVE_RECURSE
  "CMakeFiles/fig04_gpu_putsignal.dir/fig04_gpu_putsignal.cpp.o"
  "CMakeFiles/fig04_gpu_putsignal.dir/fig04_gpu_putsignal.cpp.o.d"
  "fig04_gpu_putsignal"
  "fig04_gpu_putsignal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_gpu_putsignal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
