# Empty compiler generated dependencies file for fig04_gpu_putsignal.
# This may be replaced when dependencies are built.
