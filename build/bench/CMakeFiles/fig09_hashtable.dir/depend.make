# Empty dependencies file for fig09_hashtable.
# This may be replaced when dependencies are built.
