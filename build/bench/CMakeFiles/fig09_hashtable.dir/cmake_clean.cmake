file(REMOVE_RECURSE
  "CMakeFiles/fig09_hashtable.dir/fig09_hashtable.cpp.o"
  "CMakeFiles/fig09_hashtable.dir/fig09_hashtable.cpp.o.d"
  "fig09_hashtable"
  "fig09_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
