# Empty dependencies file for fig05_stencil.
# This may be replaced when dependencies are built.
