file(REMOVE_RECURSE
  "CMakeFiles/fig05_stencil.dir/fig05_stencil.cpp.o"
  "CMakeFiles/fig05_stencil.dir/fig05_stencil.cpp.o.d"
  "fig05_stencil"
  "fig05_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
