# Empty dependencies file for fig06_workload_roofline.
# This may be replaced when dependencies are built.
