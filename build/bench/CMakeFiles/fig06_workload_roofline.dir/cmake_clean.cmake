file(REMOVE_RECURSE
  "CMakeFiles/fig06_workload_roofline.dir/fig06_workload_roofline.cpp.o"
  "CMakeFiles/fig06_workload_roofline.dir/fig06_workload_roofline.cpp.o.d"
  "fig06_workload_roofline"
  "fig06_workload_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_workload_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
