file(REMOVE_RECURSE
  "CMakeFiles/fig10_split.dir/fig10_split.cpp.o"
  "CMakeFiles/fig10_split.dir/fig10_split.cpp.o.d"
  "fig10_split"
  "fig10_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
