# Empty compiler generated dependencies file for fig10_split.
# This may be replaced when dependencies are built.
