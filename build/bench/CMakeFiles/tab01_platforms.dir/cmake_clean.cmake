file(REMOVE_RECURSE
  "CMakeFiles/tab01_platforms.dir/tab01_platforms.cpp.o"
  "CMakeFiles/tab01_platforms.dir/tab01_platforms.cpp.o.d"
  "tab01_platforms"
  "tab01_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
