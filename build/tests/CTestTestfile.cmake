# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tests_util "/root/repo/build/tests/tests_util")
set_tests_properties(tests_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_simnet "/root/repo/build/tests/tests_simnet")
set_tests_properties(tests_simnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_runtime "/root/repo/build/tests/tests_runtime")
set_tests_properties(tests_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_mpi "/root/repo/build/tests/tests_mpi")
set_tests_properties(tests_mpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_shmem "/root/repo/build/tests/tests_shmem")
set_tests_properties(tests_shmem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_core "/root/repo/build/tests/tests_core")
set_tests_properties(tests_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_workloads "/root/repo/build/tests/tests_workloads")
set_tests_properties(tests_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_coll "/root/repo/build/tests/tests_coll")
set_tests_properties(tests_coll PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_integration "/root/repo/build/tests/tests_integration")
set_tests_properties(tests_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;msgroof_test;/root/repo/tests/CMakeLists.txt;0;")
