file(REMOVE_RECURSE
  "CMakeFiles/tests_shmem.dir/shmem_test.cpp.o"
  "CMakeFiles/tests_shmem.dir/shmem_test.cpp.o.d"
  "tests_shmem"
  "tests_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
