# Empty compiler generated dependencies file for tests_shmem.
# This may be replaced when dependencies are built.
