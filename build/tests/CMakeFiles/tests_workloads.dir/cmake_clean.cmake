file(REMOVE_RECURSE
  "CMakeFiles/tests_workloads.dir/workloads_test.cpp.o"
  "CMakeFiles/tests_workloads.dir/workloads_test.cpp.o.d"
  "tests_workloads"
  "tests_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
