file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/util_test.cpp.o"
  "CMakeFiles/tests_util.dir/util_test.cpp.o.d"
  "tests_util"
  "tests_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
