# Empty compiler generated dependencies file for tests_simnet.
# This may be replaced when dependencies are built.
