file(REMOVE_RECURSE
  "CMakeFiles/tests_simnet.dir/simnet_test.cpp.o"
  "CMakeFiles/tests_simnet.dir/simnet_test.cpp.o.d"
  "tests_simnet"
  "tests_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
