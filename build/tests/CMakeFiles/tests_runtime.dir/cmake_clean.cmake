file(REMOVE_RECURSE
  "CMakeFiles/tests_runtime.dir/runtime_test.cpp.o"
  "CMakeFiles/tests_runtime.dir/runtime_test.cpp.o.d"
  "tests_runtime"
  "tests_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
