file(REMOVE_RECURSE
  "CMakeFiles/tests_mpi.dir/mpi_test.cpp.o"
  "CMakeFiles/tests_mpi.dir/mpi_test.cpp.o.d"
  "tests_mpi"
  "tests_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
