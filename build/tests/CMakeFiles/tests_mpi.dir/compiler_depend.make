# Empty compiler generated dependencies file for tests_mpi.
# This may be replaced when dependencies are built.
