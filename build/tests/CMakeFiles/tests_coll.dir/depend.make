# Empty dependencies file for tests_coll.
# This may be replaced when dependencies are built.
