file(REMOVE_RECURSE
  "CMakeFiles/tests_coll.dir/coll_test.cpp.o"
  "CMakeFiles/tests_coll.dir/coll_test.cpp.o.d"
  "tests_coll"
  "tests_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
