
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/algorithms.cpp" "src/CMakeFiles/msgroof.dir/coll/algorithms.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/coll/algorithms.cpp.o.d"
  "/root/repo/src/core/fit.cpp" "src/CMakeFiles/msgroof.dir/core/fit.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/core/fit.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/CMakeFiles/msgroof.dir/core/model.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/core/model.cpp.o.d"
  "/root/repo/src/core/plot.cpp" "src/CMakeFiles/msgroof.dir/core/plot.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/core/plot.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/msgroof.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/core/report.cpp.o.d"
  "/root/repo/src/core/split.cpp" "src/CMakeFiles/msgroof.dir/core/split.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/core/split.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/msgroof.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/core/sweep.cpp.o.d"
  "/root/repo/src/mpi/collective.cpp" "src/CMakeFiles/msgroof.dir/mpi/collective.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/mpi/collective.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/msgroof.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/CMakeFiles/msgroof.dir/mpi/p2p.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/mpi/p2p.cpp.o.d"
  "/root/repo/src/mpi/win.cpp" "src/CMakeFiles/msgroof.dir/mpi/win.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/mpi/win.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/CMakeFiles/msgroof.dir/runtime/engine.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/runtime/engine.cpp.o.d"
  "/root/repo/src/shmem/gpu.cpp" "src/CMakeFiles/msgroof.dir/shmem/gpu.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/shmem/gpu.cpp.o.d"
  "/root/repo/src/shmem/shmem.cpp" "src/CMakeFiles/msgroof.dir/shmem/shmem.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/shmem/shmem.cpp.o.d"
  "/root/repo/src/simnet/fabric.cpp" "src/CMakeFiles/msgroof.dir/simnet/fabric.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/fabric.cpp.o.d"
  "/root/repo/src/simnet/link.cpp" "src/CMakeFiles/msgroof.dir/simnet/link.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/link.cpp.o.d"
  "/root/repo/src/simnet/loggp.cpp" "src/CMakeFiles/msgroof.dir/simnet/loggp.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/loggp.cpp.o.d"
  "/root/repo/src/simnet/platform.cpp" "src/CMakeFiles/msgroof.dir/simnet/platform.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/platform.cpp.o.d"
  "/root/repo/src/simnet/topology.cpp" "src/CMakeFiles/msgroof.dir/simnet/topology.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/topology.cpp.o.d"
  "/root/repo/src/simnet/trace.cpp" "src/CMakeFiles/msgroof.dir/simnet/trace.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/trace.cpp.o.d"
  "/root/repo/src/simnet/trace_export.cpp" "src/CMakeFiles/msgroof.dir/simnet/trace_export.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/simnet/trace_export.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/msgroof.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/msgroof.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/msgroof.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/msgroof.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/msgroof.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/util/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/msgroof.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/util/units.cpp.o.d"
  "/root/repo/src/workloads/hashtable/gpu.cpp" "src/CMakeFiles/msgroof.dir/workloads/hashtable/gpu.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/hashtable/gpu.cpp.o.d"
  "/root/repo/src/workloads/hashtable/hashtable.cpp" "src/CMakeFiles/msgroof.dir/workloads/hashtable/hashtable.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/hashtable/hashtable.cpp.o.d"
  "/root/repo/src/workloads/hashtable/one_sided.cpp" "src/CMakeFiles/msgroof.dir/workloads/hashtable/one_sided.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/hashtable/one_sided.cpp.o.d"
  "/root/repo/src/workloads/hashtable/two_sided.cpp" "src/CMakeFiles/msgroof.dir/workloads/hashtable/two_sided.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/hashtable/two_sided.cpp.o.d"
  "/root/repo/src/workloads/sptrsv/gpu.cpp" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/gpu.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/gpu.cpp.o.d"
  "/root/repo/src/workloads/sptrsv/matrix.cpp" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/matrix.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/matrix.cpp.o.d"
  "/root/repo/src/workloads/sptrsv/one_sided.cpp" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/one_sided.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/one_sided.cpp.o.d"
  "/root/repo/src/workloads/sptrsv/partition.cpp" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/partition.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/partition.cpp.o.d"
  "/root/repo/src/workloads/sptrsv/reference.cpp" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/reference.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/reference.cpp.o.d"
  "/root/repo/src/workloads/sptrsv/two_sided.cpp" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/two_sided.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/sptrsv/two_sided.cpp.o.d"
  "/root/repo/src/workloads/stencil/gpu.cpp" "src/CMakeFiles/msgroof.dir/workloads/stencil/gpu.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/stencil/gpu.cpp.o.d"
  "/root/repo/src/workloads/stencil/host_staged.cpp" "src/CMakeFiles/msgroof.dir/workloads/stencil/host_staged.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/stencil/host_staged.cpp.o.d"
  "/root/repo/src/workloads/stencil/one_sided.cpp" "src/CMakeFiles/msgroof.dir/workloads/stencil/one_sided.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/stencil/one_sided.cpp.o.d"
  "/root/repo/src/workloads/stencil/stencil.cpp" "src/CMakeFiles/msgroof.dir/workloads/stencil/stencil.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/stencil/stencil.cpp.o.d"
  "/root/repo/src/workloads/stencil/two_sided.cpp" "src/CMakeFiles/msgroof.dir/workloads/stencil/two_sided.cpp.o" "gcc" "src/CMakeFiles/msgroof.dir/workloads/stencil/two_sided.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
