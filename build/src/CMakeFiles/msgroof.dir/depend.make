# Empty dependencies file for msgroof.
# This may be replaced when dependencies are built.
