file(REMOVE_RECURSE
  "libmsgroof.a"
)
